// Command chaingen generates closed-chain instances as JSON for use with
// gathersim -in (and for sharing reproducible workloads).
//
// Usage:
//
//	chaingen -shape walk -size 300 -seed 5 > walk300.json
//	chaingen -shape spiral -size 1000 -out spiral.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"gridgather/internal/generate"
)

func main() {
	var (
		shape = flag.String("shape", "walk", "workload family: "+strings.Join(generate.Names(), ", "))
		size  = flag.Int("size", 128, "approximate number of robots")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	ch, err := generate.Named(*shape, *size, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(ch, "", " ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (n=%d, bounds %v)\n", *out, ch.Len(), ch.Bounds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaingen:", err)
	os.Exit(1)
}
