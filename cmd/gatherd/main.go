// Command gatherd is the long-running simulation service: an HTTP server
// (internal/serve) that accepts gathering jobs, runs them on a bounded
// worker pool, streams per-round traces, and answers identical
// re-submissions from a content-addressed result cache without stepping
// the engine. See DESIGN.md §12 and the README quickstart.
//
// Usage:
//
//	gatherd -addr :8080
//	gatherd -addr 127.0.0.1:8080 -workers 4 -queue 64 -spool /var/spool/gatherd
//
// Submit a job and watch it:
//
//	curl -s localhost:8080/jobs -d '{"shape":"spiral","size":200}'
//	curl -N localhost:8080/jobs/j1/stream
//
// Or submit a whole declarative campaign (internal/workload spec):
//
//	curl -s localhost:8080/campaign --data-binary @campaign.yaml
//	curl -s localhost:8080/campaigns/c1
//
// SIGINT/SIGTERM drains gracefully: submissions get 503, running engines
// stop at their next round boundary, and — with -spool — each interrupted
// run leaves a resumable checkpoint behind. Exits 130 when interrupted,
// the conventional status of a signal-terminated process.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridgather/internal/serve"
)

// exitInterrupted mirrors gathersim: 128+SIGINT, so scripts can tell a
// drained shutdown from a crash.
const exitInterrupted = 130

func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprint(w, `gatherd — HTTP gathering-simulation service with a result cache.

Flags:
  -addr HOST:PORT    listen address (default :8080)
  -workers N         concurrent simulation workers (default 2)
  -queue N           pending-job queue depth before 429 (default 16)
  -max-job-wall D    per-job wall-clock cap, e.g. 30s, 5m (default none);
                     an expired job ends with status "deadline"
  -spool DIR         write resume checkpoints for drained/expired runs
  -drain-timeout D   how long shutdown waits for workers (default 30s)

Endpoints:
  POST /jobs                 submit {scenario|shape,size,seed,config,strategy,sched,maxRounds,workers}
  POST /campaign             submit a declarative workload spec (YAML, internal/workload);
                             every expanded item is admitted like a job, deduplicated
                             by the same content-addressed cache
  GET  /campaigns/{id}       campaign progress: per-item statuses and rollup
  GET  /jobs/{id}            job status (+result once terminal)
  GET  /jobs/{id}/stream     SSE per-round trace; replays identically after completion
  GET  /results/{key}        result by content address
  GET  /results/{key}/replay finished trace as NDJSON
  GET  /stats                cache and engine counters
  GET  /healthz              liveness (503 while draining)
`)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent simulation workers")
	queue := flag.Int("queue", 16, "pending-job queue depth")
	maxWall := flag.Duration("max-job-wall", 0, "per-job wall-clock cap (0 = none)")
	spool := flag.String("spool", "", "checkpoint spool directory for interrupted runs")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
	flag.Usage = usage
	flag.Parse()

	if *spool != "" {
		if err := os.MkdirAll(*spool, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "gatherd: spool dir: %v\n", err)
			os.Exit(1)
		}
	}

	srv := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		MaxJobWall: *maxWall,
		SpoolDir:   *spool,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "gatherd: listening on %s\n", *addr)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "gatherd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: stop signal delivery (a second ^C kills us the hard way),
	// refuse new work, let running engines reach a round boundary and
	// spool, then close the listener.
	stop()
	fmt.Fprintln(os.Stderr, "gatherd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "gatherd: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "gatherd: http shutdown: %v\n", err)
	}
	os.Exit(exitInterrupted)
}
