package gridgather_test

import (
	"math/rand"
	"testing"

	gridgather "gridgather"
)

// TestFacadeQuickstart exercises the documented public API end to end.
func TestFacadeQuickstart(t *testing.T) {
	ch, err := gridgather.Spiral(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gridgather.Gather(ch, gridgather.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Gathered {
		t.Fatal("quickstart did not gather")
	}
	if res.Rounds <= 0 || res.InitialLen <= 0 {
		t.Errorf("implausible result: %+v", res)
	}
}

func TestFacadeNewChain(t *testing.T) {
	ch, err := gridgather.NewChain([]gridgather.Vec{
		gridgather.V(0, 0), gridgather.V(1, 0), gridgather.V(1, 1), gridgather.V(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Gathered() {
		t.Error("unit square is gathered")
	}
	if _, err := gridgather.NewChain([]gridgather.Vec{gridgather.V(0, 0)}); err == nil {
		t.Error("invalid chain accepted")
	}
}

func TestFacadeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range gridgather.ShapeNames() {
		ch, err := gridgather.Shape(name, 64, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ch.Len() < 4 {
			t.Errorf("%s: trivial chain", name)
		}
	}
}

func TestFacadeEngineStepping(t *testing.T) {
	ch, err := gridgather.Rectangle(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := gridgather.NewEngine(ch, gridgather.Options{})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		cont, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !cont {
			break
		}
		steps++
		if steps > 10000 {
			t.Fatal("engine never finished")
		}
	}
	if !eng.Chain().Gathered() {
		t.Error("engine finished without gathering")
	}
}

func TestFacadeConfigDefaults(t *testing.T) {
	cfg := gridgather.DefaultConfig()
	if cfg.ViewingPathLength != 11 || cfg.RunPeriod != 13 {
		t.Errorf("paper constants wrong: %+v", cfg)
	}
}

func TestFacadeAblationOptions(t *testing.T) {
	if !gridgather.MergeOnlyOptions().Config.DisableRunStarts {
		t.Error("merge-only must disable run starts")
	}
	if !gridgather.SequentialRunsOptions().Config.SequentialRuns {
		t.Error("sequential option wrong")
	}
}

// TestFacadeSchedulers: the three relaxed activation models are runnable
// straight from gridgather.Options, reproducibly, and the zero-value
// SchedConfig stays FSYNC.
func TestFacadeSchedulers(t *testing.T) {
	var zero gridgather.SchedConfig
	if zero.Kind != gridgather.SchedFSYNC {
		t.Fatalf("zero SchedConfig must be FSYNC, got %v", zero.Kind)
	}
	for _, sc := range []gridgather.SchedConfig{
		gridgather.RoundRobinSched(3),
		gridgather.BoundedAdversarySched(2, 7),
		gridgather.RandomSched(0.7, 7),
	} {
		t.Run(sc.String(), func(t *testing.T) {
			ch, err := gridgather.Rectangle(16, 16)
			if err != nil {
				t.Fatal(err)
			}
			res, err := gridgather.Gather(ch, gridgather.Options{Sched: sc})
			if err != nil {
				t.Fatalf("%v did not gather: %v", sc, err)
			}
			if !res.Gathered {
				t.Fatalf("%v: not gathered: %+v", sc, res)
			}
			parsed, err := gridgather.ParseSched(sc.String())
			if err != nil {
				t.Fatalf("ParseSched(%q): %v", sc, err)
			}
			// Compare canonical forms: String() normalises defaulted
			// parameters (e.g. p=0.5), so the parsed config may differ from
			// sc only in explicitly-spelled defaults.
			if parsed.String() != sc.String() {
				t.Errorf("flag round trip: %v != %v", parsed, sc)
			}
		})
	}
}

// TestVerifyFacade: the public conformance hook accepts a healthy
// workload and rejects nothing on it.
func TestVerifyFacade(t *testing.T) {
	ch, err := gridgather.Spiral(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := gridgather.Verify(ch, gridgather.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	// The zero-value config means defaults, like everywhere in the facade.
	if err := gridgather.Verify(ch, gridgather.Config{}); err != nil {
		t.Fatal(err)
	}
	// Verify does not consume the chain: a subsequent Gather still works.
	if _, err := gridgather.Gather(ch, gridgather.Options{}); err != nil {
		t.Fatal(err)
	}
}
