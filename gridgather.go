// Package gridgather is a simulator and reference implementation of
// "Gathering a Closed Chain of Robots on a Grid" (Abshoff, Cord-Landwehr,
// Fischer, Jung, Meyer auf der Heide; IPDPS 2016, arXiv:1510.05454): a
// fully local, linear-time gathering strategy for a closed chain of n
// indistinguishable robots on the integer grid in the FSYNC model.
//
// The package is a facade over the implementation packages:
//
//   - internal/core — the Strategy interface (DESIGN.md §10) and its two
//     registered implementations: the paper's algorithm (merge
//     operations, quasi lines, runner-driven reshapement, run passing,
//     pipelining, termination conditions) and the linear-time
//     closed-chain contraction successor (arXiv:1501.04877);
//   - internal/chain, internal/grid, internal/view — the substrate: the
//     closed-chain data structure, grid geometry, and the restricted
//     local views (viewing path length 11);
//   - internal/sim — the round engine with invariant checking, watchdog
//     and instrumentation;
//   - internal/sched — pluggable activation schedulers: FSYNC (the
//     paper's model), round-robin SSYNC, a bounded adversary, and
//     Bernoulli activation (Options.Sched, DESIGN.md §8);
//   - internal/generate — workload generators (spirals, combs,
//     staircases, random polyominoes, random closed walks, …) and the
//     fuzzing decoders (FromBytes);
//   - internal/baseline — the comparison strategies of the experiments;
//   - internal/oracle — the model-based conformance layer: a naive
//     reimplementation of the round semantics checked against the
//     engine in lockstep (Verify, cmd/gatherfuzz).
//
// Quickstart:
//
//	ch, err := gridgather.Spiral(8)
//	if err != nil { ... }
//	res, err := gridgather.Gather(ch, gridgather.Options{})
//	fmt.Printf("gathered %d robots in %d rounds\n", res.InitialLen, res.Rounds)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced results.
package gridgather

import (
	"math/rand"

	"gridgather/internal/baseline"
	"gridgather/internal/chain"
	"gridgather/internal/core"
	"gridgather/internal/generate"
	"gridgather/internal/grid"
	"gridgather/internal/oracle"
	"gridgather/internal/sched"
	"gridgather/internal/sim"
)

// Core re-exports. Aliases keep the internal packages as the single source
// of truth while giving external importers a usable public API.
type (
	// Vec is a grid point or displacement.
	Vec = grid.Vec
	// Box is an axis-aligned bounding box.
	Box = grid.Box
	// Chain is a closed chain of robots.
	Chain = chain.Chain
	// Handle identifies one chain member for its whole lifetime (robots
	// are dense handles into the chain's flat storage; see internal/chain).
	Handle = chain.Handle
	// Config holds the algorithm parameters (viewing path length, run
	// period, merge detection length).
	Config = core.Config
	// Options configures a simulation run.
	Options = sim.Options
	// Result aggregates a finished simulation.
	Result = sim.Result
	// Engine drives a simulation round by round.
	Engine = sim.Engine
	// Observer receives the chain state after every round.
	Observer = sim.Observer
	// PairStats is the run-pair accounting (Lemma 1/2 instrumentation).
	PairStats = sim.PairStats
)

// Activation schedulers (internal/sched, DESIGN.md §8). The paper proves
// its O(n) bound for fully synchronous rounds; Options.Sched relaxes the
// activation model to ask how the strategy degrades (the E-sched tables in
// EXPERIMENTS.md).
type (
	// SchedConfig describes an activation scheduler as a comparable value
	// for Options.Sched. The zero value is FSYNC — every robot activated
	// every round, the paper's model.
	SchedConfig = sched.Config
	// SchedKind selects one of the built-in activation models.
	SchedKind = sched.Kind
)

// The built-in activation models for SchedConfig.Kind.
const (
	// SchedFSYNC activates every robot in every round (the default).
	SchedFSYNC = sched.FSYNC
	// SchedRoundRobin activates a contiguous window of ceil(n/K) robots,
	// sliding one chain index per round (deterministic SSYNC).
	SchedRoundRobin = sched.RoundRobin
	// SchedBoundedAdversary lets robots sleep at random (seeded), but
	// never more than K consecutive rounds.
	SchedBoundedAdversary = sched.BoundedAdversary
	// SchedRandom activates each robot independently with probability P
	// per round (seeded Bernoulli).
	SchedRandom = sched.Random
)

// ParseSched parses the -sched flag syntax shared by all CLIs: "fsync",
// "rr:K", "bounded:K[:p=P][:seed=S]", "random[:p=P][:seed=S]".
func ParseSched(s string) (SchedConfig, error) { return sched.Parse(s) }

// RoundRobinSched returns the deterministic SSYNC scheduler config: a
// contiguous window of ceil(n/k) robots per round, sliding by one.
func RoundRobinSched(k int) SchedConfig { return SchedConfig{Kind: sched.RoundRobin, K: k} }

// BoundedAdversarySched returns the bounded-asynchrony scheduler config:
// seeded random sleeping, at most k consecutive rounds per robot.
func BoundedAdversarySched(k int, seed int64) SchedConfig {
	return SchedConfig{Kind: sched.BoundedAdversary, K: k, Seed: seed}
}

// RandomSched returns the Bernoulli activation scheduler config: each
// robot independently active with probability p per round.
func RandomSched(p float64, seed int64) SchedConfig {
	return SchedConfig{Kind: sched.Random, P: p, Seed: seed}
}

// Gathering strategies (internal/core, DESIGN.md §10). Options.Strategy
// selects which algorithm drives the chain; every strategy runs under the
// same engine, schedulers, invariant battery and conformance harness (the
// E-strat tables in EXPERIMENTS.md compare them head to head).
type (
	// Strategy is the round contract a gathering algorithm implements to
	// run under the engine: chain access, per-round stepping with an
	// activation set, and the gathering predicate (DESIGN.md §10).
	Strategy = core.Strategy
	// StrategyName names a registered gathering strategy for
	// Options.Strategy. The zero value is the paper's algorithm, so
	// existing zero-value Options are unchanged.
	StrategyName = core.StrategyName
)

// The registered strategies for Options.Strategy.
const (
	// StrategyPaper is the paper's fully local algorithm (the default).
	StrategyPaper = core.StrategyPaper
	// StrategyLinTime is the linear-time closed-chain contraction
	// successor (arXiv:1501.04877): gathers in ~diameter/2 FSYNC rounds
	// by clamping every robot into the shrunken bounding box.
	StrategyLinTime = core.StrategyLinTime
)

// ParseStrategy parses the -strategy flag syntax shared by all CLIs:
// "paper" (or "") and "lintime".
func ParseStrategy(s string) (StrategyName, error) { return core.ParseStrategy(s) }

// StrategyNames lists the strategies accepted by ParseStrategy.
func StrategyNames() []string { return core.StrategyNames() }

// NewStrategy constructs a registered strategy over the chain with the
// given config. A zero-value cfg selects the paper's defaults. Most
// callers use Options.Strategy and let the engine construct it instead.
func NewStrategy(name StrategyName, ch *Chain, cfg Config) (Strategy, error) {
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	return core.NewStrategy(name, ch, cfg)
}

// Run lifecycle (internal/sim, DESIGN.md §11): checkpoint/resume,
// cancellation and deadlines, panic isolation.
type (
	// Checkpoint is a versioned, checksummed snapshot of a paused run:
	// restoring it and finishing reproduces the uninterrupted run byte for
	// byte (Engine.Checkpoint / Restore / Encode / DecodeCheckpoint).
	Checkpoint = sim.Checkpoint
	// Bundle is a portable failure report: the failing scenario (chain,
	// configuration, scheduler, strategy, workers) in one checksummed
	// file, replayable via gatherfuzz -resume.
	Bundle = sim.Bundle
	// PanicError is a strategy panic contained by the engine: the failing
	// round plus the recovered value and stack. The engine stays poisoned
	// afterwards — further Steps return the same error and Checkpoint
	// refuses.
	PanicError = sim.PanicError
)

// Run-lifecycle sentinel errors (match with errors.Is).
var (
	// ErrDeadline marks a run stopped at a round boundary by
	// Options.Deadline or Options.MaxWallTime; the partial Result is
	// sealed and the engine checkpointable.
	ErrDeadline = sim.ErrDeadline
	// ErrCheckpointCorrupt marks a checkpoint that fails any integrity
	// check (envelope, checksum, or semantic validation on Restore).
	ErrCheckpointCorrupt = sim.ErrCheckpointCorrupt
	// ErrCheckpointVersion marks a checkpoint written by a different
	// format version.
	ErrCheckpointVersion = sim.ErrCheckpointVersion
	// ErrBundleCorrupt marks a diagnostic bundle that fails any integrity
	// check.
	ErrBundleCorrupt = sim.ErrBundleCorrupt
	// ErrBundleVersion marks a bundle written by a different format
	// version.
	ErrBundleVersion = sim.ErrBundleVersion
)

// Restore rebuilds a paused engine from a checkpoint. Semantic parameters
// (algorithm config, scheduler, strategy, round/RNG state) come from the
// checkpoint; runtime knobs (Workers, CheckInvariants, Observer, Deadline,
// MaxWallTime) from opts. Invalid checkpoints fail with
// ErrCheckpointCorrupt.
func Restore(cp *Checkpoint, opts Options) (*Engine, error) { return sim.Restore(cp, opts) }

// DecodeCheckpoint validates and decodes an encoded checkpoint.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) { return sim.DecodeCheckpoint(data) }

// WriteCheckpoint atomically writes a checkpoint file (temp file + rename).
func WriteCheckpoint(path string, cp *Checkpoint) error { return sim.WriteCheckpoint(path, cp) }

// ReadCheckpoint reads and validates a checkpoint file.
func ReadCheckpoint(path string) (*Checkpoint, error) { return sim.ReadCheckpoint(path) }

// V constructs a grid vector.
func V(x, y int) Vec { return grid.V(x, y) }

// NewChain builds a closed chain from positions in chain order, validating
// the paper's initial-configuration requirements.
func NewChain(positions []Vec) (*Chain, error) { return chain.New(positions) }

// DefaultConfig returns the paper's parameter set (V=11, L=13).
func DefaultConfig() Config { return core.DefaultConfig() }

// Gather simulates the chain until it fits a 2x2 square and returns the
// result. The chain is owned by the simulation afterwards.
func Gather(ch *Chain, opts Options) (Result, error) { return sim.Gather(ch, opts) }

// NewEngine creates a step-by-step simulation engine.
func NewEngine(ch *Chain, opts Options) (*Engine, error) { return sim.NewEngine(ch, opts) }

// Verify runs the model-based conformance check (internal/oracle,
// DESIGN.md §7) on the chain: the fast engine and a naive
// reimplementation of the round semantics execute in lockstep until
// gathering, comparing full state every round under the invariant
// battery. The chain is not modified. A zero-value cfg selects the
// paper's defaults, like everywhere else in the facade. It returns nil
// when the histories agree and gathering completes within the Theorem 1
// round cap.
func Verify(ch *Chain, cfg Config) error {
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	_, err := oracle.Check(cfg, ch, 0)
	return err
}

// Workload generators (see internal/generate for the full set).

// Rectangle returns the boundary chain of a w x h cell rectangle.
func Rectangle(w, h int) (*Chain, error) { return generate.Rectangle(w, h) }

// Spiral returns a rectangular spiral corridor boundary with the given
// number of windings — the classic worst case.
func Spiral(windings int) (*Chain, error) { return generate.Spiral(windings) }

// Staircase returns a staircase polyomino boundary.
func Staircase(steps, run int) (*Chain, error) { return generate.Staircase(steps, run) }

// Comb returns a comb polyomino boundary (nested quasi lines).
func Comb(teeth, toothLen, gap int) (*Chain, error) { return generate.Comb(teeth, toothLen, gap) }

// RandomClosedWalk returns a random (possibly self-crossing) closed
// lattice walk with n robots.
func RandomClosedWalk(n int, rng *rand.Rand) (*Chain, error) {
	return generate.RandomClosedWalk(n, rng)
}

// RandomPolyomino returns the boundary of a randomly grown polyomino.
func RandomPolyomino(cells int, rng *rand.Rand) (*Chain, error) {
	return generate.RandomPolyomino(cells, rng)
}

// Shape builds one of the named workload families ("rectangle",
// "flatring", "histogram", "staircase", "comb", "spiral", "polyomino",
// "walk", "doubled", "serpentine", "lshape") at roughly the given size.
func Shape(name string, size int, rng *rand.Rand) (*Chain, error) {
	return generate.Named(name, size, rng)
}

// ShapeNames lists the families accepted by Shape.
func ShapeNames() []string { return generate.Names() }

// Baseline strategies (experiment E12).

// MergeOnlyOptions disables the runner machinery (ablation).
func MergeOnlyOptions() Options { return baseline.MergeOnlyOptions() }

// SequentialRunsOptions disables pipelining (ablation).
func SequentialRunsOptions() Options { return baseline.SequentialRunsOptions() }

// Contraction is the global-vision comparison strategy; ContractionResult
// its summary.
type (
	Contraction       = baseline.Contraction
	ContractionResult = baseline.ContractionResult
	// ManhattanHopper shortens an open chain between fixed endpoints
	// (the [KM09] reconstruction); HopperResult its summary.
	ManhattanHopper = baseline.ManhattanHopper
	HopperResult    = baseline.HopperResult
)

// NewContraction wraps a chain with the global-vision contraction strategy.
func NewContraction(ch *Chain) *Contraction { return baseline.NewContraction(ch) }

// NewManhattanHopper prepares the open-chain shortening baseline.
func NewManhattanHopper(pts []Vec) (*ManhattanHopper, error) {
	return baseline.NewManhattanHopper(pts)
}
