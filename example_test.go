package gridgather_test

// The README's code snippets live here as compiling, output-checked
// Example functions (and mirror examples/quickstart and
// examples/baselines), so the documented API can never rot: if a
// signature or a deterministic result changes, go test fails before the
// docs lie.

import (
	"fmt"
	"log"

	gridgather "gridgather"
)

// ExampleGather is the README quickstart: build a hand-written closed
// chain, gather it, read the result.
func ExampleGather() {
	// A 5x2 rectangle loop of 14 robots, in chain order.
	positions := []gridgather.Vec{
		gridgather.V(0, 0), gridgather.V(1, 0), gridgather.V(2, 0),
		gridgather.V(3, 0), gridgather.V(4, 0), gridgather.V(5, 0),
		gridgather.V(5, 1), gridgather.V(5, 2),
		gridgather.V(4, 2), gridgather.V(3, 2), gridgather.V(2, 2),
		gridgather.V(1, 2), gridgather.V(0, 2),
		gridgather.V(0, 1),
	}
	ch, err := gridgather.NewChain(positions)
	if err != nil {
		log.Fatal(err)
	}
	res, err := gridgather.Gather(ch, gridgather.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gathered %d robots in %d rounds\n", res.InitialLen, res.Rounds)
	// Output:
	// gathered 14 robots in 2 rounds
}

// ExampleSpiral runs the classic worst case — a rectangular spiral
// corridor — and reads the instrumentation off the Result.
func ExampleSpiral() {
	ch, err := gridgather.Spiral(6)
	if err != nil {
		log.Fatal(err)
	}
	n, diameter := ch.Len(), ch.Diameter()
	res, err := gridgather.Gather(ch, gridgather.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spiral: n=%d robots, diameter %d\n", n, diameter)
	fmt.Printf("gathered in %d rounds (%.3f rounds/robot)\n", res.Rounds, res.RoundsPerRobot())
	fmt.Printf("merges performed: %d, runs started: %d\n", res.TotalMerges, res.TotalRunsStarted)
	// Output:
	// spiral: n=672 robots, diameter 27
	// gathered in 58 rounds (0.086 rounds/robot)
	// merges performed: 670, runs started: 137
}

// ExampleOptions_scheduler is the scheduler quickstart (DESIGN.md §8):
// the same square under the paper's FSYNC model and under round-robin
// SSYNC, where only a third of the chain is active per round.
func ExampleOptions_scheduler() {
	run := func(opts gridgather.Options) gridgather.Result {
		ch, err := gridgather.Rectangle(24, 24)
		if err != nil {
			log.Fatal(err)
		}
		res, err := gridgather.Gather(ch, opts)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	fsync := run(gridgather.Options{})
	rr := run(gridgather.Options{Sched: gridgather.RoundRobinSched(3)})
	fmt.Printf("fsync: %d robots in %d rounds\n", fsync.InitialLen, fsync.Rounds)
	fmt.Printf("rr:3:  %d robots in %d rounds (gathered=%v)\n", rr.InitialLen, rr.Rounds, rr.Gathered)
	// Output:
	// fsync: 96 robots in 97 rounds
	// rr:3:  96 robots in 323 rounds (gathered=true)
}

// ExampleOptions_strategy is the strategy quickstart (DESIGN.md §10):
// the same square under the paper's fully local strategy and under the
// linear-time bounding-box contraction successor, which trades global
// vision for ~diameter/2 rounds.
func ExampleOptions_strategy() {
	run := func(opts gridgather.Options) gridgather.Result {
		ch, err := gridgather.Rectangle(24, 24)
		if err != nil {
			log.Fatal(err)
		}
		res, err := gridgather.Gather(ch, opts)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	paper := run(gridgather.Options{})
	lin := run(gridgather.Options{Strategy: gridgather.StrategyLinTime})
	fmt.Printf("paper:   %d robots in %d rounds\n", paper.InitialLen, paper.Rounds)
	fmt.Printf("lintime: %d robots in %d rounds (strategy %s)\n", lin.InitialLen, lin.Rounds, lin.Strategy)
	// Output:
	// paper:   96 robots in 97 rounds
	// lintime: 96 robots in 12 rounds (strategy lintime)
}

// Example_baselines mirrors examples/baselines: the paper's pipelined
// strategy against the no-pipelining ablation and the global-vision
// contraction baseline on one square-ring workload.
func Example_baselines() {
	mk := func() *gridgather.Chain {
		ch, err := gridgather.Rectangle(60, 60)
		if err != nil {
			log.Fatal(err)
		}
		return ch
	}
	fmt.Printf("workload: square ring, n=%d, diameter %d\n", mk().Len(), mk().Diameter())

	paper, err := gridgather.Gather(mk(), gridgather.Options{})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := gridgather.Gather(mk(), gridgather.SequentialRunsOptions())
	if err != nil {
		log.Fatal(err)
	}
	contraction, err := gridgather.NewContraction(mk()).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper (pipelined):  %4d rounds\n", paper.Rounds)
	fmt.Printf("sequential runs:    %4d rounds\n", seq.Rounds)
	fmt.Printf("global contraction: %4d rounds (global vision: ~diameter/2)\n", contraction.Rounds)
	// Output:
	// workload: square ring, n=240, diameter 60
	// paper (pipelined):   331 rounds
	// sequential runs:     552 rounds
	// global contraction:   30 rounds (global vision: ~diameter/2)
}

// ExampleVerify runs the model-based conformance check on a workload: the
// fast engine and the naive reference model execute in lockstep and must
// agree on every round (DESIGN.md §7).
func ExampleVerify() {
	ch, err := gridgather.Spiral(3)
	if err != nil {
		log.Fatal(err)
	}
	if err := gridgather.Verify(ch, gridgather.Config{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("engine and naive model agree, round by round")
	// Output:
	// engine and naive model agree, round by round
}

// ExampleParseSched parses the -sched flag syntax shared by every CLI.
func ExampleParseSched() {
	cfg, err := gridgather.ParseSched("bounded:2:p=0.5:seed=7")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cfg.Kind, cfg.K, cfg.P, cfg.Seed)
	// Output:
	// bounded 2 0.5 7
}
